//! Proposition 3.12: the full s-t tgd `E(x,z) ∧ E(z,y) → F(x,y) ∧ M(z)`
//! has **no quasi-inverse**.
//!
//! By Theorem 3.5 this is equivalent to the failure of the
//! `(~M,~M)`-subset property. For *this* mapping the bounded check over
//! the universe of all `E`-instances on the pair's constants is
//! **conclusive**, because witnesses never need new constants or facts
//! outside that universe:
//!
//! * the mapping is full, so `I ~M I'` ⟺ `chase(I) = chase(I')`
//!   (equal 2-path and midpoint sets);
//! * every non-dangling edge of a witness runs between values of the
//!   chase's active domain (an edge touching a fresh constant either
//!   composes — creating an `F`/`M` fact outside the chase — or is
//!   dangling), and dangling edges can be removed from both witnesses
//!   without affecting `~M` or containment;
//! * hence if any witness pair exists, one exists inside the universe of
//!   instances over the original constants.
//!
//! The concrete counterexample found (and verified below):
//! `I₁ = {E(a,a)}`, `I₂ = {E(a,b), E(a,c), E(b,a), E(b,b)}`.

use quasi_inverse::core::enumerate::ground_instances;
use quasi_inverse::prelude::*;
use quasi_inverse::workloads::paper;

fn counterexample(m: &SchemaMapping) -> (Instance, Instance) {
    (
        Instance::parse(&m.source, "E(a,a)").unwrap(),
        Instance::parse(&m.source, "E(a,b) E(a,c) E(b,a) E(b,b)").unwrap(),
    )
}

#[test]
fn the_pair_satisfies_the_premise_of_the_subset_property() {
    let m = paper::prop_3_12();
    let (i1, i2) = counterexample(&m);
    // Sol(I2) ⊆ Sol(I1): chase(I1) = {F(a,a), M(a)} ⊆ chase(I2).
    assert!(solutions_subset(&m, &i2, &i1).unwrap());
    assert!(!equivalent(&m, &i1, &i2).unwrap());
}

#[test]
fn every_equivalent_of_i1_contains_the_loop_and_no_equivalent_of_i2_does() {
    // The two halves of the refutation, checked exhaustively over the
    // witness-complete universe (all 512 E-instances over {a,b,c}).
    let m = paper::prop_3_12();
    let (i1, i2) = counterexample(&m);
    let universe = ground_instances(&m.source, &["a", "b", "c"], 9);
    assert_eq!(universe.len(), 512);
    let chase1 = m.chase(&i1).unwrap();
    let chase2 = m.chase(&i2).unwrap();
    let loop_fact = Instance::parse(&m.source, "E(a,a)").unwrap();
    let mut equivalents_of_i1 = 0;
    let mut equivalents_of_i2 = 0;
    for w in &universe {
        let cw = m.chase(w).unwrap();
        if cw == chase1 {
            equivalents_of_i1 += 1;
            // chase(I1) realizes F(a,a) through midpoint a only, so E(a,a)
            // is forced.
            assert!(
                loop_fact.is_subinstance_of(w).unwrap(),
                "an equivalent of I1 without E(a,a): {w}"
            );
        }
        if cw == chase2 {
            equivalents_of_i2 += 1;
            // chase(I2) lacks F(a,c) (and F(a,a) via midpoint a-paths that
            // E(a,a) would force), so E(a,a) can never appear.
            assert!(
                !loop_fact.is_subinstance_of(w).unwrap(),
                "an equivalent of I2 with E(a,a): {w}"
            );
        }
    }
    assert!(equivalents_of_i1 >= 1);
    assert!(equivalents_of_i2 >= 1);
}

#[test]
fn subset_property_fails_conclusively() {
    let m = paper::prop_3_12();
    let universe = ground_instances(&m.source, &["a", "b", "c"], 9);
    let report = subset_property_bounded(
        &m,
        Relation::SolutionEquiv,
        Relation::SolutionEquiv,
        &universe,
    )
    .unwrap();
    assert!(
        !report.holds,
        "Prop 3.12: the (~M,~M)-subset property fails"
    );
    // Our specific pair is among the reported failures.
    let (i1, i2) = counterexample(&m);
    let pos1 = universe.iter().position(|w| *w == i1).unwrap();
    let pos2 = universe.iter().position(|w| *w == i2).unwrap();
    assert!(
        report.failures.contains(&(pos1, pos2)),
        "the documented counterexample pair is a failure"
    );
}

#[test]
fn two_constant_universe_is_too_small_to_see_it() {
    // Over two constants the property holds — the counterexample
    // genuinely needs three (the gallery's two-constant "yes" for
    // prop-3.12 is the expected bounded false positive).
    let m = paper::prop_3_12();
    let universe = ground_instances(&m.source, &["a", "b"], 4);
    let report = subset_property_bounded(
        &m,
        Relation::SolutionEquiv,
        Relation::SolutionEquiv,
        &universe,
    )
    .unwrap();
    assert!(report.holds);
}

#[test]
fn a_fortiori_no_inverse() {
    // "a fortiori, such schema mappings have no inverse": the (=,=)
    // property fails too, already over two constants.
    let m = paper::prop_3_12();
    let universe = ground_instances(&m.source, &["a", "b"], 4);
    let report =
        subset_property_bounded(&m, Relation::Equality, Relation::Equality, &universe).unwrap();
    assert!(!report.holds);
}

//! Property-based tests (proptest) on the substrate invariants the
//! paper's proofs lean on: chase universality and monotonicity,
//! homomorphism laws, `~M` being an equivalence relation, parser
//! round-trips, core idempotence, and the LAV union witness.
//!
//! Random structures are produced by the seeded generators of
//! `qi-workloads`, so every failure is reproducible from its seed.

use proptest::prelude::*;
use quasi_inverse::prelude::*;
use quasi_inverse::schema::data::InstanceData;
use quasi_inverse::workloads::random::{
    random_ground_instance, random_mapping, rng, InstanceParams, MappingParams,
};

fn any_params() -> impl Strategy<Value = MappingParams> {
    (1usize..=2, 1usize..=2, 1usize..=3, 1usize..=3, any::<bool>(), any::<bool>()).prop_map(
        |(ns, nt, arity, n_tgds, lav, full)| MappingParams {
            n_source_rels: ns,
            n_target_rels: nt,
            max_arity: arity,
            n_tgds,
            lav,
            full,
            max_body_atoms: 2,
            max_head_atoms: 2,
        },
    )
}

const IP: InstanceParams = InstanceParams {
    n_consts: 3,
    n_facts: 5,
};

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn chase_output_is_a_universal_solution(seed in any::<u64>(), params in any_params()) {
        let mut r = rng(seed);
        let m = random_mapping(&mut r, &params);
        let i = random_ground_instance(&m.source, &mut r, &IP);
        let u = m.chase(&i).unwrap();
        prop_assert!(is_solution(&m.tgds, &i, &u));
        prop_assert!(is_universal_solution(&m.tgds, &i, &u).unwrap());
    }

    #[test]
    fn oblivious_and_restricted_chase_agree_up_to_homomorphism(
        seed in any::<u64>(), params in any_params()
    ) {
        let mut r = rng(seed);
        let m = random_mapping(&mut r, &params);
        let i = random_ground_instance(&m.source, &mut r, &IP);
        let restricted = m.chase(&i).unwrap();
        let oblivious = chase_oblivious_helper(&m, &i);
        prop_assert!(hom_equivalent(&restricted, &oblivious));
    }

    #[test]
    fn chase_is_monotone(seed in any::<u64>(), params in any_params()) {
        let mut r = rng(seed);
        let m = random_mapping(&mut r, &params);
        let i1 = random_ground_instance(&m.source, &mut r, &IP);
        let extra = random_ground_instance(&m.source, &mut r, &IP);
        let i2 = i1.union(&extra).unwrap();
        // I1 ⊆ I2 ⇒ hom chase(I1) → chase(I2) ⇒ Sol(I2) ⊆ Sol(I1).
        prop_assert!(solutions_subset(&m, &i2, &i1).unwrap());
    }

    #[test]
    fn solution_equivalence_is_an_equivalence_relation(
        seed in any::<u64>(), params in any_params()
    ) {
        let mut r = rng(seed);
        let m = random_mapping(&mut r, &params);
        let a = random_ground_instance(&m.source, &mut r, &IP);
        let b = random_ground_instance(&m.source, &mut r, &IP);
        let c = random_ground_instance(&m.source, &mut r, &IP);
        prop_assert!(equivalent(&m, &a, &a).unwrap());
        prop_assert_eq!(equivalent(&m, &a, &b).unwrap(), equivalent(&m, &b, &a).unwrap());
        if equivalent(&m, &a, &b).unwrap() && equivalent(&m, &b, &c).unwrap() {
            prop_assert!(equivalent(&m, &a, &c).unwrap());
        }
    }

    #[test]
    fn tgd_display_parse_round_trip(seed in any::<u64>(), params in any_params()) {
        let mut r = rng(seed);
        let m = random_mapping(&mut r, &params);
        for tgd in &m.tgds {
            let text = tgd.to_string();
            let back = parse_tgd(&m.source, &m.target, &text).unwrap();
            prop_assert_eq!(tgd, &back, "{}", text);
        }
    }

    #[test]
    fn quasi_inverse_output_display_parse_round_trip(seed in any::<u64>()) {
        let mut r = rng(seed);
        let m = random_mapping(&mut r, &MappingParams { lav: true, max_arity: 2, ..Default::default() });
        let rev = quasi_inverse::core::quasi_inverse(&m, &Default::default()).unwrap();
        for dep in &rev.deps {
            let text = dep.to_string();
            let back = parse_disj_tgd(&m.target, &m.source, &text).unwrap();
            prop_assert_eq!(dep, &back, "{}", text);
        }
    }

    #[test]
    fn core_is_idempotent_and_equivalent(seed in any::<u64>(), params in any_params()) {
        let mut r = rng(seed);
        let m = random_mapping(&mut r, &params);
        let i = random_ground_instance(&m.source, &mut r, &IP);
        let u = m.chase(&i).unwrap(); // may contain nulls
        let c = core_of(&u);
        prop_assert!(hom_equivalent(&c, &u));
        prop_assert_eq!(core_of(&c), c.clone());
        prop_assert!(c.fact_count() <= u.fact_count());
    }

    #[test]
    fn hom_equivalent_instances_have_isomorphic_cores(seed in any::<u64>()) {
        let mut r = rng(seed);
        let m = random_mapping(&mut r, &MappingParams::default());
        let i = random_ground_instance(&m.source, &mut r, &IP);
        let a = m.chase(&i).unwrap();
        // A hom-equivalent variant: shift nulls and add the original's
        // facts back in (a "padded" equivalent).
        let b = a.union(&a.shift_nulls(1000)).unwrap();
        prop_assert!(hom_equivalent(&a, &b));
        prop_assert!(is_isomorphic(&core_of(&a), &core_of(&b)));
    }

    #[test]
    fn instance_data_round_trip(seed in any::<u64>(), params in any_params()) {
        let mut r = rng(seed);
        let m = random_mapping(&mut r, &params);
        let i = random_ground_instance(&m.source, &mut r, &IP);
        let u = m.chase(&i).unwrap();
        for inst in [i, u] {
            let data: InstanceData = (&inst).into();
            prop_assert_eq!(data.build().unwrap(), inst);
        }
    }

    #[test]
    fn instance_text_round_trip(seed in any::<u64>(), params in any_params()) {
        let mut r = rng(seed);
        let m = random_mapping(&mut r, &params);
        let u = m.chase(&random_ground_instance(&m.source, &mut r, &IP)).unwrap();
        if !u.is_empty() {
            let text = u.to_string();
            prop_assert_eq!(Instance::parse(&m.target, &text).unwrap(), u);
        }
    }

    #[test]
    fn lav_union_witness(seed in any::<u64>()) {
        let mut r = rng(seed);
        let m = random_mapping(&mut r, &MappingParams { lav: true, n_tgds: 3, ..Default::default() });
        let i1 = random_ground_instance(&m.source, &mut r, &IP);
        let i2 = random_ground_instance(&m.source, &mut r, &IP);
        // Prop 3.11's proof obligation: if Sol(I2) ⊆ Sol(I1) then
        // I2 ~M I1 ∪ I2.
        if solutions_subset(&m, &i2, &i1).unwrap() {
            let union = i1.union(&i2).unwrap();
            prop_assert!(equivalent(&m, &i2, &union).unwrap());
        }
    }

    #[test]
    fn sigma_star_is_logically_sound(seed in any::<u64>(), params in any_params()) {
        // Every member of Σ* is a logical consequence of Σ.
        let mut r = rng(seed);
        let m = random_mapping(&mut r, &params);
        for member in sigma_star(&m.tgds).unwrap() {
            prop_assert!(
                quasi_inverse::chase::implies_tgd(&m.tgds, &member).unwrap(),
                "{}", member
            );
        }
    }

    #[test]
    fn lav_algorithm_output_is_sound_and_faithful(seed in any::<u64>()) {
        let mut r = rng(seed);
        let m = random_mapping(&mut r, &MappingParams { lav: true, max_arity: 2, n_tgds: 2, ..Default::default() });
        let rev = quasi_inverse::core::quasi_inverse(&m, &Default::default()).unwrap();
        let i = random_ground_instance(&m.source, &mut r, &InstanceParams { n_consts: 2, n_facts: 3 });
        let rt = round_trip(&m, &rev, &i, Default::default()).unwrap();
        prop_assert!(rt.is_sound());
        prop_assert!(rt.is_faithful());
    }
}

fn chase_oblivious_helper(m: &SchemaMapping, i: &Instance) -> Instance {
    quasi_inverse::chase::chase_oblivious(&m.tgds, i, &m.target)
        .unwrap()
        .instance
}

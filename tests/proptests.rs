//! Property-style tests on the substrate invariants the paper's proofs
//! lean on: chase universality and monotonicity, homomorphism laws, `~M`
//! being an equivalence relation, parser round-trips, core idempotence,
//! and the LAV union witness.
//!
//! Random structures are produced by the seeded generators of
//! `qi-workloads`, driven over a fixed seed schedule, so every failure is
//! reproducible from the seed reported in the assertion message.

use quasi_inverse::prelude::*;
use quasi_inverse::schema::data::InstanceData;
use quasi_inverse::workloads::random::{
    random_ground_instance, random_mapping, rng, InstanceParams, MappingParams,
};
use quasi_inverse::workloads::rng::Rng64;

/// Mirror of the old proptest strategy: small mapping shapes drawn from
/// the case's own RNG so the shape varies across seeds.
fn any_params(r: &mut Rng64) -> MappingParams {
    MappingParams {
        n_source_rels: r.random_range(1..=2),
        n_target_rels: r.random_range(1..=2),
        max_arity: r.random_range(1..=3),
        n_tgds: r.random_range(1..=3),
        lav: r.random_bool(0.5),
        full: r.random_bool(0.5),
        max_body_atoms: 2,
        max_head_atoms: 2,
    }
}

const CASES: u64 = 24;

const IP: InstanceParams = InstanceParams {
    n_consts: 3,
    n_facts: 5,
};

#[test]
fn chase_output_is_a_universal_solution() {
    for seed in 0..CASES {
        let mut r = rng(seed);
        let params = any_params(&mut r);
        let m = random_mapping(&mut r, &params);
        let i = random_ground_instance(&m.source, &mut r, &IP);
        let u = m.chase(&i).unwrap();
        assert!(is_solution(&m.tgds, &i, &u), "seed {seed}");
        assert!(
            is_universal_solution(&m.tgds, &i, &u).unwrap(),
            "seed {seed}"
        );
    }
}

#[test]
fn oblivious_and_restricted_chase_agree_up_to_homomorphism() {
    for seed in 0..CASES {
        let mut r = rng(seed);
        let params = any_params(&mut r);
        let m = random_mapping(&mut r, &params);
        let i = random_ground_instance(&m.source, &mut r, &IP);
        let restricted = m.chase(&i).unwrap();
        let oblivious = chase_oblivious_helper(&m, &i);
        assert!(hom_equivalent(&restricted, &oblivious), "seed {seed}");
    }
}

#[test]
fn chase_is_monotone() {
    for seed in 0..CASES {
        let mut r = rng(seed);
        let params = any_params(&mut r);
        let m = random_mapping(&mut r, &params);
        let i1 = random_ground_instance(&m.source, &mut r, &IP);
        let extra = random_ground_instance(&m.source, &mut r, &IP);
        let i2 = i1.union(&extra).unwrap();
        // I1 ⊆ I2 ⇒ hom chase(I1) → chase(I2) ⇒ Sol(I2) ⊆ Sol(I1).
        assert!(solutions_subset(&m, &i2, &i1).unwrap(), "seed {seed}");
    }
}

#[test]
fn solution_equivalence_is_an_equivalence_relation() {
    for seed in 0..CASES {
        let mut r = rng(seed);
        let params = any_params(&mut r);
        let m = random_mapping(&mut r, &params);
        let a = random_ground_instance(&m.source, &mut r, &IP);
        let b = random_ground_instance(&m.source, &mut r, &IP);
        let c = random_ground_instance(&m.source, &mut r, &IP);
        assert!(equivalent(&m, &a, &a).unwrap(), "seed {seed}");
        assert_eq!(
            equivalent(&m, &a, &b).unwrap(),
            equivalent(&m, &b, &a).unwrap(),
            "seed {seed}"
        );
        if equivalent(&m, &a, &b).unwrap() && equivalent(&m, &b, &c).unwrap() {
            assert!(equivalent(&m, &a, &c).unwrap(), "seed {seed}");
        }
    }
}

#[test]
fn tgd_display_parse_round_trip() {
    for seed in 0..CASES {
        let mut r = rng(seed);
        let params = any_params(&mut r);
        let m = random_mapping(&mut r, &params);
        for tgd in &m.tgds {
            let text = tgd.to_string();
            let back = parse_tgd(&m.source, &m.target, &text).unwrap();
            assert_eq!(tgd, &back, "seed {seed}: {text}");
        }
    }
}

#[test]
fn quasi_inverse_output_display_parse_round_trip() {
    for seed in 0..CASES {
        let mut r = rng(seed);
        let m = random_mapping(
            &mut r,
            &MappingParams {
                lav: true,
                max_arity: 2,
                ..Default::default()
            },
        );
        let rev = quasi_inverse::core::quasi_inverse(&m, &Default::default()).unwrap();
        for dep in &rev.deps {
            let text = dep.to_string();
            let back = parse_disj_tgd(&m.target, &m.source, &text).unwrap();
            assert_eq!(dep, &back, "seed {seed}: {text}");
        }
    }
}

#[test]
fn core_is_idempotent_and_equivalent() {
    for seed in 0..CASES {
        let mut r = rng(seed);
        let params = any_params(&mut r);
        let m = random_mapping(&mut r, &params);
        let i = random_ground_instance(&m.source, &mut r, &IP);
        let u = m.chase(&i).unwrap(); // may contain nulls
        let c = core_of(&u);
        assert!(hom_equivalent(&c, &u), "seed {seed}");
        assert_eq!(core_of(&c), c.clone(), "seed {seed}");
        assert!(c.fact_count() <= u.fact_count(), "seed {seed}");
    }
}

#[test]
fn hom_equivalent_instances_have_isomorphic_cores() {
    for seed in 0..CASES {
        let mut r = rng(seed);
        let m = random_mapping(&mut r, &MappingParams::default());
        let i = random_ground_instance(&m.source, &mut r, &IP);
        let a = m.chase(&i).unwrap();
        // A hom-equivalent variant: shift nulls and add the original's
        // facts back in (a "padded" equivalent).
        let b = a.union(&a.shift_nulls(1000)).unwrap();
        assert!(hom_equivalent(&a, &b), "seed {seed}");
        assert!(is_isomorphic(&core_of(&a), &core_of(&b)), "seed {seed}");
    }
}

#[test]
fn instance_data_round_trip() {
    for seed in 0..CASES {
        let mut r = rng(seed);
        let params = any_params(&mut r);
        let m = random_mapping(&mut r, &params);
        let i = random_ground_instance(&m.source, &mut r, &IP);
        let u = m.chase(&i).unwrap();
        for inst in [i, u] {
            let data: InstanceData = (&inst).into();
            assert_eq!(data.build().unwrap(), inst, "seed {seed}");
        }
    }
}

#[test]
fn instance_text_round_trip() {
    for seed in 0..CASES {
        let mut r = rng(seed);
        let params = any_params(&mut r);
        let m = random_mapping(&mut r, &params);
        let u = m
            .chase(&random_ground_instance(&m.source, &mut r, &IP))
            .unwrap();
        if !u.is_empty() {
            let text = u.to_string();
            assert_eq!(Instance::parse(&m.target, &text).unwrap(), u, "seed {seed}");
        }
    }
}

#[test]
fn lav_union_witness() {
    for seed in 0..CASES {
        let mut r = rng(seed);
        let m = random_mapping(
            &mut r,
            &MappingParams {
                lav: true,
                n_tgds: 3,
                ..Default::default()
            },
        );
        let i1 = random_ground_instance(&m.source, &mut r, &IP);
        let i2 = random_ground_instance(&m.source, &mut r, &IP);
        // Prop 3.11's proof obligation: if Sol(I2) ⊆ Sol(I1) then
        // I2 ~M I1 ∪ I2.
        if solutions_subset(&m, &i2, &i1).unwrap() {
            let union = i1.union(&i2).unwrap();
            assert!(equivalent(&m, &i2, &union).unwrap(), "seed {seed}");
        }
    }
}

#[test]
fn sigma_star_is_logically_sound() {
    for seed in 0..CASES {
        // Every member of Σ* is a logical consequence of Σ.
        let mut r = rng(seed);
        let params = any_params(&mut r);
        let m = random_mapping(&mut r, &params);
        for member in sigma_star(&m.tgds).unwrap() {
            assert!(
                quasi_inverse::chase::implies_tgd(&m.tgds, &member).unwrap(),
                "seed {seed}: {member}"
            );
        }
    }
}

#[test]
fn lav_algorithm_output_is_sound_and_faithful() {
    for seed in 0..CASES {
        let mut r = rng(seed);
        let m = random_mapping(
            &mut r,
            &MappingParams {
                lav: true,
                max_arity: 2,
                n_tgds: 2,
                ..Default::default()
            },
        );
        let rev = quasi_inverse::core::quasi_inverse(&m, &Default::default()).unwrap();
        let i = random_ground_instance(
            &m.source,
            &mut r,
            &InstanceParams {
                n_consts: 2,
                n_facts: 3,
            },
        );
        let rt = round_trip(&m, &rev, &i, Default::default()).unwrap();
        assert!(rt.is_sound(), "seed {seed}");
        assert!(rt.is_faithful(), "seed {seed}");
    }
}

fn chase_oblivious_helper(m: &SchemaMapping, i: &Instance) -> Instance {
    quasi_inverse::chase::chase_oblivious(&m.tgds, i, &m.target)
        .unwrap()
        .instance
}

//! Query answering across the bidirectional exchange: the data-exchange
//! payoff of faithfulness. If the reverse exchange recovers a source `V`
//! that is data-exchange equivalent to `I` (chase results hom-equivalent,
//! Definition 6.5(2)), then **every conjunctive query over the target has
//! the same certain answers** whether asked of `I` or of the recovered
//! `V` — the practical content of "similarity up to the space of
//! solutions is often good enough".

use quasi_inverse::chase::certain_answers;
use quasi_inverse::lang::ConjunctiveQuery;
use quasi_inverse::prelude::*;
use quasi_inverse::workloads::paper;

#[test]
fn certain_answers_survive_the_round_trip_for_both_quasi_inverses() {
    let m = paper::decomposition();
    let i = Instance::parse(&m.source, "P(a,b,c) P(a2,b,c2)").unwrap();
    let queries = [
        ConjunctiveQuery::parse(&m.target, "q(x,y) :- Q(x,y)").unwrap(),
        ConjunctiveQuery::parse(&m.target, "q(y,z) :- R(y,z)").unwrap(),
        ConjunctiveQuery::parse(&m.target, "q(x,z) :- Q(x,y), R(y,z)").unwrap(),
        ConjunctiveQuery::parse(&m.target, "q() :- Q(x,y), R(y,x)").unwrap(),
    ];
    for rev in [
        paper::decomposition_quasi_inverse_join(),
        paper::decomposition_quasi_inverse_lav(),
    ] {
        let rt = round_trip(&m, &rev, &i, Default::default()).unwrap();
        let v = rt.recovered_equivalent().expect("faithful");
        for q in &queries {
            let on_i = certain_answers(&m.tgds, &i, &m.target, q).unwrap();
            let on_v = certain_answers(&m.tgds, v, &m.target, q).unwrap();
            assert_eq!(on_i, on_v, "query {q} diverged");
        }
    }
}

#[test]
fn join_query_recovers_the_lossy_association() {
    // The decomposition loses which Q-row paired with which R-row; the
    // certain answers of the re-join query reflect exactly the recovered
    // ambiguity (all four combinations), not the original pairs.
    let m = paper::decomposition();
    let i = Instance::parse(&m.source, "P(a,b,c) P(a2,b,c2)").unwrap();
    let q = ConjunctiveQuery::parse(&m.target, "q(x,z) :- Q(x,y), R(y,z)").unwrap();
    let ans = certain_answers(&m.tgds, &i, &m.target, &q).unwrap();
    assert_eq!(ans.len(), 4, "a×c, a×c2, a2×c, a2×c2");
}

#[test]
fn source_queries_on_recovered_instances_are_sound() {
    // Ground answers of a source query on the recovered instance are
    // answers the original source already certified (soundness at the
    // query level): V's facts chase into U, so any ground match of a
    // source CQ in V corresponds to target facts within U.
    let m = paper::decomposition();
    let rev = quasi_inverse::core::quasi_inverse(&m, &Default::default()).unwrap();
    let i = Instance::parse(&m.source, "P(a,b,c) P(d,e,f)").unwrap();
    let rt = round_trip(&m, &rev, &i, Default::default()).unwrap();
    let v = rt.recovered_equivalent().unwrap();
    let q = ConjunctiveQuery::parse(&m.source, "q(x,y,z) :- P(x,y,z)").unwrap();
    let v_ground_answers: Vec<Vec<Value>> = quasi_inverse::chase::evaluate(&q, v)
        .into_iter()
        .filter(|t| t.iter().all(|x| x.is_const()))
        .collect();
    // Each ground recovered P-row re-chases inside U.
    for row in &v_ground_answers {
        let mut single = Instance::new(m.source.clone());
        single
            .insert(m.source.rel("P").unwrap(), row.clone())
            .unwrap();
        let u_single = m.chase(&single).unwrap();
        assert!(
            u_single.is_subinstance_of(&rt.u).unwrap(),
            "recovered row {row:?} not justified by U"
        );
    }
}

#[test]
fn identity_mapping_certain_answers_are_plain_evaluation() {
    // Sanity for the Id mapping of §2: certain answers over Id coincide
    // with evaluating the query on (a copy of) the instance itself.
    let s = Schema::parse("P/2").unwrap();
    let id = SchemaMapping::identity(&s).unwrap();
    let i = Instance::parse(&s, "P(a,b) P(b,c)").unwrap();
    let q = ConjunctiveQuery::parse(&id.target, "q(x,z) :- P(x,y), P(y,z)").unwrap();
    let certain = certain_answers(&id.tgds, &i, &id.target, &q).unwrap();
    assert_eq!(certain.len(), 1);
    assert!(certain.contains(&vec![Value::constant("a"), Value::constant("c")]));
}

//! The spectrum of `(~1,~2)`-inverses (§3): Propositions 3.7 and 3.9,
//! the mixed relaxations in between, and the unique-solutions /
//! subset-property separation the paper defers to its full version.

use quasi_inverse::core::enumerate::ground_instances;
use quasi_inverse::core::is_relaxed_inverse_bounded;
use quasi_inverse::prelude::*;
use quasi_inverse::workloads::paper;

fn closed_universe(m: &SchemaMapping) -> Vec<Instance> {
    let tuples: usize = m
        .source
        .rel_ids()
        .map(|r| 2usize.pow(m.source.arity(r) as u32))
        .sum();
    ground_instances(&m.source, &["a", "b"], tuples)
}

#[test]
fn prop_3_7_inverse_is_every_relaxation() {
    // An (=,=)-inverse is a (~1,~2)-inverse for every coarser pair.
    let m = paper::copy();
    let rev = inverse(&m).unwrap().unwrap();
    let universe = closed_universe(&m);
    for rel1 in [Relation::Equality, Relation::SolutionEquiv] {
        for rel2 in [Relation::Equality, Relation::SolutionEquiv] {
            let report = is_relaxed_inverse_bounded(&m, &rev, rel1, rel2, &universe).unwrap();
            assert!(report.holds, "({rel1:?},{rel2:?}) fails");
        }
    }
}

#[test]
fn prop_3_9_quasi_inverse_of_invertible_mapping_is_an_inverse() {
    // For invertible mappings, ~M collapses to equality, so the
    // QuasiInverse algorithm's output must also verify as an inverse.
    let m = paper::copy();
    let qi = quasi_inverse::core::quasi_inverse(&m, &Default::default()).unwrap();
    let universe = closed_universe(&m);
    let as_quasi = is_quasi_inverse_bounded(&m, &qi, &universe).unwrap();
    let as_inverse = is_inverse_bounded(&m, &qi, &universe).unwrap();
    assert!(as_quasi.holds);
    assert!(as_inverse.holds, "Proposition 3.9");
}

#[test]
fn remark_after_prop_3_9_quasi_inverse_algorithm_may_use_disjunction() {
    // §5's closing remark: on an invertible mapping the QuasiInverse
    // algorithm can produce disjunctions even though the Inverse
    // algorithm finds a disjunction-free inverse.
    let m = paper::example_5_4();
    let qi = quasi_inverse::core::quasi_inverse(&m, &Default::default()).unwrap();
    let inv = inverse(&m).unwrap().unwrap();
    assert!(qi.language_features().disjunction);
    assert!(!inv.language_features().disjunction);
}

#[test]
fn mixed_relaxations_interpolate_on_projection() {
    // Projection has a quasi-inverse but no inverse; the mixed
    // (=,~M)-relaxation sits in between and is satisfied by the
    // algorithm's output (the union-witness proof gives the stronger
    // (=,~M)-subset property for LAV mappings).
    let m = paper::projection();
    let qi = quasi_inverse::core::quasi_inverse(&m, &Default::default()).unwrap();
    let universe = closed_universe(&m);
    let strict =
        is_relaxed_inverse_bounded(&m, &qi, Relation::Equality, Relation::Equality, &universe)
            .unwrap();
    assert!(!strict.holds);
    let mixed = is_relaxed_inverse_bounded(
        &m,
        &qi,
        Relation::Equality,
        Relation::SolutionEquiv,
        &universe,
    )
    .unwrap();
    assert!(mixed.holds, "mismatches: {:?}", mixed.mismatches);
    let loose = is_relaxed_inverse_bounded(
        &m,
        &qi,
        Relation::SolutionEquiv,
        Relation::SolutionEquiv,
        &universe,
    )
    .unwrap();
    assert!(loose.holds);
}

#[test]
fn unique_solutions_does_not_imply_the_subset_property() {
    // The separation mapping: unique solutions holds, (=,=)-subset fails.
    let m = paper::unique_solutions_without_subset_property();
    let universe = closed_universe(&m);
    assert!(
        unique_solutions_bounded(&m, &universe).unwrap().is_none(),
        "unique solutions must hold"
    );
    let subset =
        subset_property_bounded(&m, Relation::Equality, Relation::Equality, &universe).unwrap();
    assert!(!subset.holds, "(=,=)-subset property must fail");
    // The witnessing pair from the doc comment.
    let i1 = Instance::parse(&m.source, "P(a)").unwrap();
    let i2 = Instance::parse(&m.source, "Q(a)").unwrap();
    assert!(solutions_subset(&m, &i2, &i1).unwrap());
    assert!(!i1.is_subinstance_of(&i2).unwrap());
}

#[test]
fn separation_mapping_chase_is_injective() {
    // Sanity for the separation argument: distinct instances have
    // distinct chases over the whole universe.
    let m = paper::unique_solutions_without_subset_property();
    let universe = closed_universe(&m);
    let chases: Vec<Instance> = universe.iter().map(|i| m.chase(i).unwrap()).collect();
    for a in 0..universe.len() {
        for b in a + 1..universe.len() {
            assert_ne!(chases[a], chases[b], "{} vs {}", universe[a], universe[b]);
        }
    }
}

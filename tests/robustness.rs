//! Experiment E6: the robustness claims of §1.
//!
//! * Augmenting the source schema of an invertible mapping `M` with a new
//!   relation symbol destroys invertibility (the new relation never
//!   reaches the target) …
//! * … yet **every inverse of `M` is a quasi-inverse of the augmented
//!   mapping `M*`**, and
//! * a quasi-inverse `M'` of a non-invertible `M` remains a quasi-inverse
//!   after augmentation.

use quasi_inverse::core::enumerate::ground_instances;
use quasi_inverse::prelude::*;
use quasi_inverse::workloads::paper;

fn reparse_reverse(m_aug: &SchemaMapping, rev: &ReverseMapping) -> ReverseMapping {
    let texts: Vec<String> = rev.deps.iter().map(|d| d.to_string()).collect();
    let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
    ReverseMapping::parse(m_aug, &refs).expect("same dependencies over augmented schemas")
}

fn closed_universe(m: &SchemaMapping) -> Vec<Instance> {
    let tuples: usize = m
        .source
        .rel_ids()
        .map(|r| 2usize.pow(m.source.arity(r) as u32))
        .sum();
    ground_instances(&m.source, &["a", "b"], tuples)
}

#[test]
fn augmentation_destroys_invertibility() {
    let m = paper::copy();
    assert!(constant_propagation_property(&m).unwrap());
    let m_aug = m.augment_source(&[("Extra", 1)]).unwrap();
    // Constant propagation fails for Extra ⇒ not invertible (Prop 5.3).
    assert!(!constant_propagation_property(&m_aug).unwrap());
    assert!(inverse(&m_aug).unwrap().is_none());
    // And the unique-solutions property fails: instances differing only
    // in Extra share all solutions.
    let universe = closed_universe(&m_aug);
    assert!(unique_solutions_bounded(&m_aug, &universe)
        .unwrap()
        .is_some());
}

#[test]
fn old_inverse_becomes_a_quasi_inverse_of_the_augmented_mapping() {
    let m = paper::copy();
    let inv = inverse(&m).unwrap().expect("copy is invertible");
    let m_aug = m.augment_source(&[("Extra", 1)]).unwrap();
    let inv_aug = reparse_reverse(&m_aug, &inv);
    let universe = closed_universe(&m_aug);
    // Not an inverse any more …
    let inv_report = is_inverse_bounded(&m_aug, &inv_aug, &universe).unwrap();
    assert!(!inv_report.holds);
    // … but a quasi-inverse (the §1 claim).
    let qi_report = is_quasi_inverse_bounded(&m_aug, &inv_aug, &universe).unwrap();
    assert!(qi_report.holds, "mismatches: {:?}", qi_report.mismatches);
}

#[test]
fn quasi_inverse_survives_augmentation_of_non_invertible_mapping() {
    // "if M' is a quasi-inverse of a non-invertible M, then
    //  M'' = (T, S ∪ {R}, Σ') is a quasi-inverse of M*."
    let m = paper::projection();
    let rev = quasi_inverse::core::quasi_inverse(&m, &Default::default()).unwrap();
    let m_aug = m.augment_source(&[("Extra", 1)]).unwrap();
    let rev_aug = reparse_reverse(&m_aug, &rev);
    let universe = closed_universe(&m_aug);
    let report = is_quasi_inverse_bounded(&m_aug, &rev_aug, &universe).unwrap();
    assert!(report.holds, "mismatches: {:?}", report.mismatches);
}

#[test]
fn round_trips_remain_faithful_on_the_augmented_mapping() {
    let m = paper::copy();
    let inv = inverse(&m).unwrap().unwrap();
    let m_aug = m.augment_source(&[("Extra", 1)]).unwrap();
    let inv_aug = reparse_reverse(&m_aug, &inv);
    // The Extra facts are unrecoverable, but the exchange-relevant part
    // comes back intact: chase(V) ≡hom U.
    let i = Instance::parse(&m_aug.source, "P(a,b) Extra(q)").unwrap();
    let rt = round_trip(&m_aug, &inv_aug, &i, Default::default()).unwrap();
    assert!(rt.is_faithful());
    let v = rt.recovered_equivalent().unwrap();
    let p = m_aug.source.rel("P").unwrap();
    let extra = m_aug.source.rel("Extra").unwrap();
    assert_eq!(v.rel_len(p), 1, "P content recovered");
    assert_eq!(v.rel_len(extra), 0, "Extra content is gone, as expected");
}

#[test]
fn augmentation_composes() {
    // Adding several relations one at a time equals adding them at once.
    let m = paper::copy();
    let twice = m
        .augment_source(&[("A", 1)])
        .unwrap()
        .augment_source(&[("B", 2)])
        .unwrap();
    let at_once = m.augment_source(&[("A", 1), ("B", 2)]).unwrap();
    assert!(twice.source.same_as(&at_once.source));
    assert_eq!(twice.tgds.len(), at_once.tgds.len());
}

//! Experiment E4: Theorems 6.7 (soundness) and 6.8 (faithfulness).
//!
//! * Every quasi-inverse specified by disjunctive tgds with constants and
//!   inequalities among constants is *sound*: re-chasing any recovered
//!   source stays within `U` up to homomorphism.
//! * The QuasiInverse algorithm's output is additionally *faithful*:
//!   some recovered source re-chases to an instance hom-equivalent to
//!   `U`.

use quasi_inverse::core::enumerate::ground_instances;
use quasi_inverse::prelude::*;
use quasi_inverse::workloads::paper;

/// All ground instances over two constants with up to `cap` facts.
fn universe(m: &SchemaMapping, cap: usize) -> Vec<Instance> {
    ground_instances(&m.source, &["a", "b"], cap)
}

#[test]
fn algorithm_outputs_are_faithful_on_paper_mappings() {
    for m in [
        paper::projection(),
        paper::union_mapping(),
        paper::decomposition(),
        paper::copy(),
        paper::thm_4_9(),
        paper::thm_4_10(),
        paper::thm_4_11(),
        paper::section_4_inequality_example(),
    ] {
        let rev = quasi_inverse::core::quasi_inverse(&m, &Default::default()).unwrap();
        for i in universe(&m, 2) {
            let rt = round_trip(&m, &rev, &i, Default::default()).unwrap();
            assert!(rt.is_sound(), "unsound on {i} for {m}");
            assert!(rt.is_faithful(), "unfaithful on {i} for {m}");
        }
    }
}

#[test]
fn soundness_holds_for_hand_written_quasi_inverses_in_the_language() {
    // Theorem 6.7 applies to ANY quasi-inverse in the guarded language.
    // Example 3.10's Σ'' is in the plain-tgd fragment of it.
    let m = paper::decomposition();
    for rev in [
        paper::decomposition_quasi_inverse_join(),
        paper::decomposition_quasi_inverse_lav(),
    ] {
        for i in universe(&m, 2) {
            let rt = round_trip(&m, &rev, &i, Default::default()).unwrap();
            assert!(rt.is_sound(), "unsound on {i}");
        }
    }
}

#[test]
fn soundness_forbids_invented_target_facts() {
    // A deliberately wrong reverse mapping that manufactures an unrelated
    // source fact which then chases to a target fact outside U.
    let m = SchemaMapping::parse("P/1 W/1", "S/1 X/1", &["P(x) -> S(x)", "W(x) -> X(x)"]).unwrap();
    let bogus = ReverseMapping::parse(&m, &["S(x) -> W(x)"]).unwrap();
    let i = Instance::parse(&m.source, "P(a)").unwrap();
    let rt = round_trip(&m, &bogus, &i, Default::default()).unwrap();
    // The recovered W(a) re-chases to X(a) ∉ U — soundness fails.
    assert!(!rt.is_sound());
    assert!(!rt.is_faithful());
}

#[test]
fn faithfulness_catches_lossy_reverse_mappings() {
    // Forgetting one of the union's branches is sound but lossy.
    let m = paper::union_mapping();
    let partial = ReverseMapping::parse(&m, &["S(x) & const(x) -> P(x)"]).unwrap();
    // On instances whose facts all came from P it is even faithful …
    let i_p = Instance::parse(&m.source, "P(a)").unwrap();
    let rt = round_trip(&m, &partial, &i_p, Default::default()).unwrap();
    assert!(rt.is_sound() && rt.is_faithful());
    // … and the paper indeed lists S(x) → P(x) as a quasi-inverse of
    // Union (§1): recovery lands in an ~M-equivalent source.
    let i_q = Instance::parse(&m.source, "Q(a)").unwrap();
    let rt = round_trip(&m, &partial, &i_q, Default::default()).unwrap();
    assert!(
        rt.is_sound() && rt.is_faithful(),
        "P(a) ~M Q(a) under Union"
    );
}

#[test]
fn recovered_equivalent_is_data_exchange_equivalent() {
    // The faithful witness V satisfies chase(V) ≡hom chase(I) — i.e.
    // V ~M I in the chase-characterized sense even when V has nulls.
    let m = paper::decomposition();
    let rev = quasi_inverse::core::quasi_inverse(&m, &Default::default()).unwrap();
    for i in universe(&m, 3) {
        let rt = round_trip(&m, &rev, &i, Default::default()).unwrap();
        let v = rt.recovered_equivalent().expect("faithful");
        let u_v = m.chase(v).unwrap();
        assert!(hom_equivalent(&u_v, &rt.u));
    }
}

#[test]
fn composition_membership_reflects_round_trips() {
    // Proposition 6.6 consistency: if the round trip recovers a GROUND
    // V, then (I, V) ∈ Inst(M ∘ M').
    let m = paper::copy();
    let rev = inverse(&m).unwrap().unwrap();
    for i in universe(&m, 3) {
        let rt = round_trip(&m, &rev, &i, Default::default()).unwrap();
        for v in &rt.recovered {
            if v.is_ground() {
                assert!(composition_contains(&m, &rev, &i, v).unwrap());
            }
        }
    }
}

//! Theorems 4.6 and 4.7, constructively (the specialized quasi-inverse
//! languages): full mappings get guard-free disjunctive quasi-inverses,
//! LAV mappings get disjunction-free ones — both verified against
//! Definition 3.8 on exhaustive bounded universes.

use quasi_inverse::core::enumerate::ground_instances;
use quasi_inverse::core::{quasi_inverse_full, quasi_inverse_lav};
use quasi_inverse::prelude::*;
use quasi_inverse::workloads::paper;
use quasi_inverse::workloads::random::{random_mapping, rng, MappingParams};

fn closed_universe(m: &SchemaMapping) -> Option<Vec<Instance>> {
    let tuples: usize = m
        .source
        .rel_ids()
        .map(|r| 2usize.pow(m.source.arity(r) as u32))
        .sum();
    (tuples <= 8).then(|| ground_instances(&m.source, &["a", "b"], tuples))
}

#[test]
fn thm_4_6_guard_free_output_verifies_on_full_mappings() {
    for m in [
        paper::union_mapping(),
        paper::decomposition(),
        paper::copy(),
        paper::thm_4_10(),
        paper::thm_4_11(),
    ] {
        assert!(m.is_full());
        let rev = quasi_inverse_full(&m, &Default::default()).unwrap();
        assert!(
            !rev.language_features().constants,
            "no Constant guards (Theorem 4.6)"
        );
        // Guard-free outputs are not guard-complete, so the exact
        // Def-3.8 verifier refuses them; validate behaviourally instead:
        // identical recovery leaves as the guarded output on every
        // instance of the universe (full chase ⇒ ground U ⇒ guards are
        // vacuous).
        let guarded = quasi_inverse::core::quasi_inverse(&m, &Default::default()).unwrap();
        let universe = closed_universe(&m).expect("paper mappings are small");
        for i in &universe {
            let a = quasi_inverse::core::exchange::recovery_leaves(&m, &rev, i, Default::default())
                .unwrap();
            let b =
                quasi_inverse::core::exchange::recovery_leaves(&m, &guarded, i, Default::default())
                    .unwrap();
            assert_eq!(a, b, "guard-free behaviour differs on {i} for {m}");
        }
    }
}

#[test]
fn thm_4_6_rejects_non_full_mappings() {
    let m = paper::thm_4_8(); // has existentials
    assert!(quasi_inverse_full(&m, &Default::default()).is_err());
}

#[test]
fn thm_4_7_disjunction_free_output_verifies_on_lav_mappings() {
    for m in [
        paper::projection(),
        paper::union_mapping(),
        paper::decomposition(),
        paper::copy(),
        paper::thm_4_8(),
        paper::thm_4_9(),
        paper::thm_4_11(),
    ] {
        assert!(m.is_lav());
        let rev = quasi_inverse_lav(&m).unwrap();
        let f = rev.language_features();
        assert!(!f.disjunction, "no disjunction (Theorem 4.7) for {m}");
        let Some(universe) = closed_universe(&m) else {
            continue;
        };
        let report = is_quasi_inverse_bounded(&m, &rev, &universe).unwrap();
        assert!(
            report.holds,
            "Thm 4.7 output fails Def 3.8 on {m}: {:?}",
            report.mismatches
        );
    }
}

#[test]
fn thm_4_7_output_is_faithful_per_instance() {
    // Faithfulness on random LAV mappings (beyond the bounded check).
    use quasi_inverse::workloads::random::{random_ground_instance, InstanceParams};
    for seed in 0..10 {
        let mut r = rng(3000 + seed);
        let m = random_mapping(
            &mut r,
            &MappingParams {
                lav: true,
                n_tgds: 3,
                max_arity: 2,
                ..Default::default()
            },
        );
        let rev = quasi_inverse_lav(&m).unwrap();
        for _ in 0..3 {
            let i = random_ground_instance(
                &m.source,
                &mut r,
                &InstanceParams {
                    n_consts: 3,
                    n_facts: 4,
                },
            );
            let rt = round_trip(&m, &rev, &i, Default::default()).unwrap();
            assert!(rt.is_sound(), "unsound on seed {seed}, {i}\n{m}");
            assert!(rt.is_faithful(), "unfaithful on seed {seed}, {i}\n{m}");
        }
    }
}

#[test]
fn thm_4_7_rejects_non_lav_mappings() {
    let m = paper::prop_3_12();
    assert!(quasi_inverse_lav(&m).is_err());
}

#[test]
fn lav_construction_matches_paper_quasi_inverses() {
    // For Projection the construction gives exactly the paper's
    // Q(x) → ∃y P(x,y) (guarded); for Union, the conjunction-flavoured
    // quasi-inverse S(x) → P(x) "and" S(x) → Q(x) the paper also lists.
    let m = paper::projection();
    let rev = quasi_inverse_lav(&m).unwrap();
    // Prime atoms P(x1,x1) and P(x1,x2) both chase to Q(x1): two
    // dependencies, the distinct-variable one being exactly the paper's
    // Q(x) → ∃y P(x,y) (guarded).
    assert_eq!(rev.deps.len(), 2);
    assert_eq!(rev.deps[0].to_string(), "Q(x1) & const(x1) -> P(x1,x1)");
    assert_eq!(
        rev.deps[1].to_string(),
        "Q(x1) & const(x1) -> exists x2 . P(x1,x2)"
    );
    let m = paper::union_mapping();
    let rev = quasi_inverse_lav(&m).unwrap();
    assert_eq!(rev.deps.len(), 2);
    assert_eq!(rev.deps[0].to_string(), "S(x1) & const(x1) -> P(x1)");
    assert_eq!(rev.deps[1].to_string(), "S(x1) & const(x1) -> Q(x1)");
}

//! Property-style tests on the extended substrates: the SO-tgd chase,
//! the target-dependency chase, and their interactions with the rest of
//! the stack. Seed-scheduled random inputs; failures reproduce from the
//! seed in the assertion message.

use quasi_inverse::analyze::is_weakly_acyclic;
use quasi_inverse::chase::{
    chase_with_target_deps, so_chase, ExchangeSetting, TargetChaseOptions, TargetChaseResult,
};
use quasi_inverse::prelude::*;
use quasi_inverse::workloads::random::{
    random_ground_instance, random_mapping, random_mapping_between, rng, InstanceParams,
    MappingParams,
};

const CASES: u64 = 16;

const IP: InstanceParams = InstanceParams {
    n_consts: 3,
    n_facts: 4,
};

#[test]
fn skolemized_chase_equals_plain_chase() {
    for seed in 0..CASES {
        let mut r = rng(seed);
        let m = random_mapping(&mut r, &MappingParams::default());
        let so = skolemize(&m.tgds, "");
        let i = random_ground_instance(&m.source, &mut r, &IP);
        let via_so = so_chase(&so, &i).unwrap();
        let via_fo = m.chase(&i).unwrap();
        assert!(hom_equivalent(&via_so, &via_fo), "seed {seed}");
    }
}

#[test]
fn so_composition_matches_two_hop_chase() {
    for seed in 0..CASES {
        let mut r = rng(seed);
        let m12 = random_mapping(
            &mut r,
            &MappingParams {
                max_arity: 2,
                n_tgds: 2,
                ..Default::default()
            },
        );
        let m23 = random_mapping_between(
            &mut r,
            &m12.target,
            &Schema::parse("Out0/2 Out1/1").unwrap(),
            &MappingParams {
                max_arity: 2,
                n_tgds: 2,
                ..Default::default()
            },
        );
        let so = so_compose(&m12, &m23).unwrap();
        let i = random_ground_instance(&m12.source, &mut r, &IP);
        let one = so_chase(&so, &i).unwrap();
        let two = m23.chase(&m12.chase(&i).unwrap()).unwrap();
        assert!(
            hom_equivalent(&one, &two),
            "seed {seed}: I = {i}\none: {one}\ntwo: {two}"
        );
    }
}

#[test]
fn target_chase_result_satisfies_all_dependencies() {
    for seed in 0..CASES {
        // Random s-t mapping plus a (weakly acyclic) copy-closure target
        // tgd per binary target relation and a key egd on it.
        let mut r = rng(seed);
        let m = random_mapping(
            &mut r,
            &MappingParams {
                full: true,
                max_arity: 2,
                ..Default::default()
            },
        );
        let binary: Vec<_> = m
            .target
            .rel_ids()
            .filter(|&rel| m.target.arity(rel) == 2)
            .collect();
        let mut target_tgds = Vec::new();
        let mut egds = Vec::new();
        for rel in binary {
            let name = m.target.name(rel).to_owned();
            target_tgds.push(
                parse_tgd(
                    &m.target,
                    &m.target,
                    &format!("{name}(x,y) & {name}(y,z) -> {name}(x,z)"),
                )
                .unwrap(),
            );
            egds.push(
                quasi_inverse::lang::parse_egd(
                    &m.target,
                    &format!("{name}(x,y) & {name}(y,x) -> x = y"),
                )
                .unwrap(),
            );
        }
        if !is_weakly_acyclic(&target_tgds) {
            continue;
        }
        let setting = ExchangeSetting {
            st_tgds: m.tgds.clone(),
            target_tgds,
            egds,
        };
        let i = random_ground_instance(&m.source, &mut r, &IP);
        match chase_with_target_deps(&setting, &i, &m.target, TargetChaseOptions::default())
            .unwrap()
        {
            TargetChaseResult::Failed { left, right } => {
                // Failure is legitimate (cycles on distinct constants);
                // the reported values must be distinct constants.
                assert!(
                    left.is_const() && right.is_const() && left != right,
                    "seed {seed}"
                );
            }
            TargetChaseResult::Solution(u) => {
                assert!(
                    quasi_inverse::chase::satisfies_all_tgds(&i, &u, &setting.st_tgds),
                    "seed {seed}"
                );
                assert!(
                    quasi_inverse::chase::satisfies_all_tgds(&u, &u, &setting.target_tgds),
                    "seed {seed}"
                );
                // No remaining egd violation: re-running repairs nothing.
                let again =
                    chase_with_target_deps(&setting, &i, &m.target, TargetChaseOptions::default())
                        .unwrap();
                assert_eq!(TargetChaseResult::Solution(u), again, "seed {seed}");
            }
        }
    }
}

#[test]
fn target_chase_is_deterministic() {
    for seed in 0..CASES {
        let mut r = rng(seed);
        let m = random_mapping(&mut r, &MappingParams::default());
        let setting = ExchangeSetting {
            st_tgds: m.tgds.clone(),
            target_tgds: vec![],
            egds: vec![],
        };
        let i = random_ground_instance(&m.source, &mut r, &IP);
        let a =
            chase_with_target_deps(&setting, &i, &m.target, TargetChaseOptions::default()).unwrap();
        let b =
            chase_with_target_deps(&setting, &i, &m.target, TargetChaseOptions::default()).unwrap();
        assert_eq!(a.clone(), b, "seed {seed}");
        // With no target deps, equals the plain chase.
        let TargetChaseResult::Solution(u) = a else {
            unreachable!("no egds ⇒ no failure")
        };
        assert_eq!(u, m.chase(&i).unwrap(), "seed {seed}");
    }
}

#[test]
fn par_run_fans_out_and_preserves_order() {
    let jobs: Vec<u64> = (0..16).collect();
    for threads in [1usize, 2, 4, 8] {
        let results = qi_exec::par_map(qi_exec::Parallelism::fixed(threads), &jobs, |&k| k * k);
        assert_eq!(results, (0..16).map(|k| k * k).collect::<Vec<_>>());
    }
}

//! Property tests on the extended substrates: the SO-tgd chase, the
//! target-dependency chase, and their interactions with the rest of the
//! stack.

use proptest::prelude::*;
use quasi_inverse::chase::{
    chase_with_target_deps, is_weakly_acyclic, so_chase, ExchangeSetting, TargetChaseOptions,
    TargetChaseResult,
};
use quasi_inverse::prelude::*;
use quasi_inverse::workloads::random::{
    random_ground_instance, random_mapping, random_mapping_between, rng, InstanceParams,
    MappingParams,
};

const IP: InstanceParams = InstanceParams {
    n_consts: 3,
    n_facts: 4,
};

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    #[test]
    fn skolemized_chase_equals_plain_chase(seed in any::<u64>()) {
        let mut r = rng(seed);
        let m = random_mapping(&mut r, &MappingParams::default());
        let so = skolemize(&m.tgds, "");
        let i = random_ground_instance(&m.source, &mut r, &IP);
        let via_so = so_chase(&so, &i).unwrap();
        let via_fo = m.chase(&i).unwrap();
        prop_assert!(hom_equivalent(&via_so, &via_fo));
    }

    #[test]
    fn so_composition_matches_two_hop_chase(seed in any::<u64>()) {
        let mut r = rng(seed);
        let m12 = random_mapping(&mut r, &MappingParams { max_arity: 2, n_tgds: 2, ..Default::default() });
        let m23 = random_mapping_between(
            &mut r,
            &m12.target,
            &Schema::parse("Out0/2 Out1/1").unwrap(),
            &MappingParams { max_arity: 2, n_tgds: 2, ..Default::default() },
        );
        let so = so_compose(&m12, &m23).unwrap();
        let i = random_ground_instance(&m12.source, &mut r, &IP);
        let one = so_chase(&so, &i).unwrap();
        let two = m23.chase(&m12.chase(&i).unwrap()).unwrap();
        prop_assert!(hom_equivalent(&one, &two), "I = {}\none: {}\ntwo: {}", i, one, two);
    }

    #[test]
    fn target_chase_result_satisfies_all_dependencies(seed in any::<u64>()) {
        // Random s-t mapping plus a (weakly acyclic) copy-closure target
        // tgd per binary target relation and a key egd on it.
        let mut r = rng(seed);
        let m = random_mapping(&mut r, &MappingParams { full: true, max_arity: 2, ..Default::default() });
        let binary: Vec<_> = m
            .target
            .rel_ids()
            .filter(|&rel| m.target.arity(rel) == 2)
            .collect();
        let mut target_tgds = Vec::new();
        let mut egds = Vec::new();
        for rel in binary {
            let name = m.target.name(rel).to_owned();
            target_tgds.push(
                parse_tgd(&m.target, &m.target, &format!("{name}(x,y) & {name}(y,z) -> {name}(x,z)")).unwrap(),
            );
            egds.push(
                quasi_inverse::lang::parse_egd(&m.target, &format!("{name}(x,y) & {name}(y,x) -> x = y")).unwrap(),
            );
        }
        prop_assume!(is_weakly_acyclic(&target_tgds));
        let setting = ExchangeSetting {
            st_tgds: m.tgds.clone(),
            target_tgds,
            egds,
        };
        let i = random_ground_instance(&m.source, &mut r, &IP);
        match chase_with_target_deps(&setting, &i, &m.target, TargetChaseOptions::default()).unwrap() {
            TargetChaseResult::Failed { left, right } => {
                // Failure is legitimate (cycles on distinct constants);
                // the reported values must be distinct constants.
                prop_assert!(left.is_const() && right.is_const() && left != right);
            }
            TargetChaseResult::Solution(u) => {
                prop_assert!(quasi_inverse::chase::satisfies_all_tgds(&i, &u, &setting.st_tgds));
                prop_assert!(quasi_inverse::chase::satisfies_all_tgds(&u, &u, &setting.target_tgds));
                // No remaining egd violation: re-running repairs nothing.
                let again = chase_with_target_deps(&setting, &i, &m.target, TargetChaseOptions::default()).unwrap();
                prop_assert_eq!(TargetChaseResult::Solution(u), again);
            }
        }
    }

    #[test]
    fn target_chase_is_deterministic(seed in any::<u64>()) {
        let mut r = rng(seed);
        let m = random_mapping(&mut r, &MappingParams::default());
        let setting = ExchangeSetting {
            st_tgds: m.tgds.clone(),
            target_tgds: vec![],
            egds: vec![],
        };
        let i = random_ground_instance(&m.source, &mut r, &IP);
        let a = chase_with_target_deps(&setting, &i, &m.target, TargetChaseOptions::default()).unwrap();
        let b = chase_with_target_deps(&setting, &i, &m.target, TargetChaseOptions::default()).unwrap();
        prop_assert_eq!(a.clone(), b);
        // With no target deps, equals the plain chase.
        let TargetChaseResult::Solution(u) = a else { unreachable!("no egds ⇒ no failure") };
        prop_assert_eq!(u, m.chase(&i).unwrap());
    }
}

#[test]
fn par_run_fans_out_and_preserves_order() {
    let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..16usize)
        .map(|k| Box::new(move || k * k) as Box<dyn FnOnce() -> usize + Send>)
        .collect();
    let results = qi_bench_par_run(jobs);
    assert_eq!(results, (0..16).map(|k| k * k).collect::<Vec<_>>());
}

// qi-bench is not a dependency of the root package; duplicate the tiny
// helper's contract here against crossbeam-free std threads instead.
fn qi_bench_par_run<T: Send>(jobs: Vec<Box<dyn FnOnce() -> T + Send>>) -> Vec<T> {
    std::thread::scope(|scope| {
        let handles: Vec<_> = jobs
            .into_iter()
            .map(|job| scope.spawn(job))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
}

//! The full data-exchange setting (source-to-target tgds + target tgds +
//! egds) as a downstream user would run it: a master-data scenario with
//! key constraints and a derived closure table.

use quasi_inverse::analyze::is_weakly_acyclic;
use quasi_inverse::chase::{
    chase_with_target_deps, ExchangeSetting, TargetChaseOptions, TargetChaseResult,
};
use quasi_inverse::lang::{parse_egd, parse_tgd};
use quasi_inverse::prelude::*;

/// Source: employee rows and org edges. Target: keyed employee table and
/// a transitively closed reporting relation.
fn setting() -> (Schema, Schema, ExchangeSetting) {
    let s = Schema::parse("EmpSrc/2 Boss/2").unwrap();
    let t = Schema::parse("Emp/2 Reports/2").unwrap();
    let st = vec![
        parse_tgd(&s, &t, "EmpSrc(id,name) -> Emp(id,name)").unwrap(),
        parse_tgd(&s, &t, "Boss(e,b) -> Reports(e,b)").unwrap(),
        // Every boss is an employee with some name.
        parse_tgd(&s, &t, "Boss(e,b) -> exists n . Emp(b,n)").unwrap(),
    ];
    let tt = vec![parse_tgd(&t, &t, "Reports(e,b) & Reports(b,c) -> Reports(e,c)").unwrap()];
    let egds = vec![
        // Employee id is a key for the name.
        parse_egd(&t, "Emp(id,n1) & Emp(id,n2) -> n1 = n2").unwrap(),
    ];
    (
        s,
        t,
        ExchangeSetting {
            st_tgds: st,
            target_tgds: tt,
            egds,
        },
    )
}

#[test]
fn setting_is_weakly_acyclic() {
    let (_, _, setting) = setting();
    assert!(is_weakly_acyclic(&setting.target_tgds));
}

#[test]
fn exchange_with_keys_and_closure() {
    let (s, t, setting) = setting();
    let i = Instance::parse(
        &s,
        "EmpSrc(e1,ana) EmpSrc(e2,bo) EmpSrc(e3,cy) Boss(e1,e2) Boss(e2,e3)",
    )
    .unwrap();
    let result = chase_with_target_deps(&setting, &i, &t, TargetChaseOptions::default()).unwrap();
    let TargetChaseResult::Solution(u) = result else {
        panic!("expected a solution");
    };
    // Closure: e1 reports to e3 transitively.
    assert!(u.contains(
        t.rel("Reports").unwrap(),
        &[Value::constant("e1"), Value::constant("e3")]
    ));
    // The key egd merged the existential name of each boss with the
    // actual EmpSrc name: no nulls remain.
    assert!(u.is_ground(), "{u}");
    assert_eq!(u.rel_len(t.rel("Emp").unwrap()), 3);
}

#[test]
fn unknown_boss_keeps_a_null_name() {
    let (s, t, setting) = setting();
    // e9 never appears in EmpSrc: its name stays a labeled null.
    let i = Instance::parse(&s, "EmpSrc(e1,ana) Boss(e1,e9)").unwrap();
    let result = chase_with_target_deps(&setting, &i, &t, TargetChaseOptions::default()).unwrap();
    let TargetChaseResult::Solution(u) = result else {
        panic!("expected a solution");
    };
    let emp = t.rel("Emp").unwrap();
    assert!(u
        .tuples(emp)
        .any(|row| row[0] == Value::constant("e9") && row[1].is_null()));
}

#[test]
fn key_violation_fails_the_exchange() {
    let (s, t, setting) = setting();
    let i = Instance::parse(&s, "EmpSrc(e1,ana) EmpSrc(e1,bo)").unwrap();
    let result = chase_with_target_deps(&setting, &i, &t, TargetChaseOptions::default()).unwrap();
    match result {
        TargetChaseResult::Failed { left, right } => {
            let names = [left, right];
            assert!(names.contains(&Value::constant("ana")));
            assert!(names.contains(&Value::constant("bo")));
        }
        TargetChaseResult::Solution(u) => panic!("expected failure, got {u}"),
    }
}

#[test]
fn closure_result_is_a_solution_of_all_dependency_classes() {
    // Sanity across the satisfaction APIs: the final instance satisfies
    // the target tgds (as tgds from T to T) and — trivially restated —
    // the st tgds from the source.
    let (s, _t, setting) = setting();
    let i = Instance::parse(&s, "EmpSrc(e1,ana) Boss(e1,e2) EmpSrc(e2,bo)").unwrap();
    let (_, t, _) = self::setting();
    let result = chase_with_target_deps(&setting, &i, &t, TargetChaseOptions::default()).unwrap();
    let TargetChaseResult::Solution(u) = result else {
        panic!()
    };
    assert!(quasi_inverse::chase::satisfies_all_tgds(
        &i,
        &u,
        &setting.st_tgds
    ));
    assert!(quasi_inverse::chase::satisfies_all_tgds(
        &u,
        &u,
        &setting.target_tgds
    ));
}
